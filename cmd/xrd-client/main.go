// Command xrd-client is a demonstration client for a running XRD
// deployment: it creates two local users, connects them to the
// gateway front end over TLS, exchanges a message through the mix
// network and prints the decrypted result.
//
// Against a monolithic deployment (one coordinator serving users
// directly) one address is enough:
//
//	xrd-client -addr 127.0.0.1:7900 -cert xrd-gateway.pem -msg "hello"
//
// Against a sharded front end, -gateways lists every gateway shard as
// "addr=certfile,..." and -addr names the coordinator (which drives
// rounds but no longer hosts users). The client discovers which
// gateway owns each user's mailbox from the gateways' status
// endpoints, and retries the next gateway when one fails at the
// transport level (refused connection, deadline):
//
//	xrd-client -addr 127.0.0.1:7900 -cert xrd-gateway.pem \
//	    -gateways "127.0.0.1:7911=gw1.pem,127.0.0.1:7912=gw2.pem" -msg "hello"
package main

import (
	"crypto/tls"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"repro/internal/chainsel"
	"repro/internal/client"
	"repro/internal/onion"
	"repro/internal/rpc"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:7900", "coordinator address (drives rounds; serves users when monolithic)")
		cert     = flag.String("cert", "xrd-gateway.pem", "coordinator certificate (from xrd-server -cert-out)")
		gateways = flag.String("gateways", "", `gateway shards as "addr=certfile,..." (empty: users talk to -addr directly)`)
		msg      = flag.String("msg", "hello from xrd-client", "message Alice sends Bob")
		cross    = flag.Bool("cross-shard", false, "place Alice and Bob on different gateway shards (needs >= 2 -gateways)")
		trigger  = flag.Bool("trigger-only", false, "trigger one round without submitting (advances a halted deployment so it can re-form)")
	)
	flag.Parse()

	endpoints, err := parseEndpoints(*addr, *cert, *gateways)
	if err != nil {
		log.Fatal(err)
	}

	if *trigger {
		driver := dialCoordinator(*addr, *cert)
		defer driver.Close()
		rep, err := driver.RunRound()
		if err != nil {
			log.Fatalf("round: %v", err)
		}
		fmt.Printf("round %d executed: %d messages delivered\n", rep.Round, rep.Delivered)
		return
	}

	front, err := rpc.NewMultiClient(endpoints)
	if err != nil {
		log.Fatal(err)
	}
	defer front.Close()
	if err := front.Refresh(); err != nil {
		log.Fatalf("discovering gateways: %v", err)
	}
	driver := dialCoordinator(*addr, *cert)
	defer driver.Close()

	st, err := front.Status()
	if err != nil {
		log.Fatalf("status: %v", err)
	}
	fmt.Printf("deployment: round %d, %d chains of %d, l=%d, %d gateway(s)\n",
		st.Round, st.NumChains, st.ChainLength, st.L, len(endpoints))

	// Chain selection is publicly computable from the chain count.
	plan, err := chainsel.NewPlan(st.NumChains)
	if err != nil {
		log.Fatal(err)
	}
	alice := client.NewUser(nil, plan)
	bob := client.NewUser(nil, plan)
	if *cross {
		// Mailbox placement follows the (random) key, so draw users
		// until the pair provably spans two gateways.
		for tries := 0; front.ClientFor(alice.Mailbox()) == front.ClientFor(bob.Mailbox()); tries++ {
			if tries > 1000 {
				log.Fatal("-cross-shard: could not place users on different gateways (is more than one gateway configured?)")
			}
			bob = client.NewUser(nil, plan)
		}
		fmt.Printf("cross-shard: alice on %s, bob on %s\n",
			front.ClientFor(alice.Mailbox()).Addr(), front.ClientFor(bob.Mailbox()).Addr())
	}
	if err := alice.StartConversation(bob.PublicKey()); err != nil {
		log.Fatal(err)
	}
	if err := bob.StartConversation(alice.PublicKey()); err != nil {
		log.Fatal(err)
	}
	if err := alice.QueueMessage([]byte(*msg)); err != nil {
		log.Fatal(err)
	}

	round := st.Round
	outA, err := alice.BuildRound(round, front)
	if err != nil {
		log.Fatalf("alice build: %v", err)
	}
	outB, err := bob.BuildRound(round, front)
	if err != nil {
		log.Fatalf("bob build: %v", err)
	}
	if err := front.Submit(alice.Mailbox(), outA); err != nil {
		log.Fatalf("alice submit: %v", err)
	}
	if err := front.Submit(bob.Mailbox(), outB); err != nil {
		log.Fatalf("bob submit: %v", err)
	}
	fmt.Printf("submitted %d+%d messages (current + covers) per user; triggering round...\n",
		len(outA.Current), len(outA.Cover))

	rep, err := driver.RunRound()
	if err != nil {
		log.Fatalf("round: %v", err)
	}
	fmt.Printf("round %d executed: %d messages delivered\n", rep.Round, rep.Delivered)

	msgs, err := front.Fetch(rep.Round, bob.Mailbox())
	if err != nil {
		log.Fatalf("fetch: %v", err)
	}
	recv, bad := bob.OpenMailbox(rep.Round, msgs)
	if bad != 0 {
		log.Fatalf("%d undecryptable messages", bad)
	}
	for _, r := range recv {
		if r.FromPartner && r.Kind == onion.KindConversation {
			fmt.Printf("bob reads: %q\n", r.Body)
			return
		}
	}
	log.Fatal("conversation message not delivered")
}

// parseEndpoints builds the user-facing gateway set: the -gateways
// list when given, else the coordinator itself (monolith).
func parseEndpoints(coordAddr, coordCert, gateways string) ([]rpc.Endpoint, error) {
	specs := [][2]string{}
	if strings.TrimSpace(gateways) == "" {
		specs = append(specs, [2]string{coordAddr, coordCert})
	} else {
		for _, entry := range strings.Split(gateways, ",") {
			parts := strings.Split(strings.TrimSpace(entry), "=")
			if len(parts) != 2 {
				return nil, fmt.Errorf(`-gateways entry %q: want "addr=certfile"`, entry)
			}
			specs = append(specs, [2]string{parts[0], parts[1]})
		}
	}
	var eps []rpc.Endpoint
	for _, s := range specs {
		tlsCfg, err := loadTLS(s[1])
		if err != nil {
			return nil, err
		}
		eps = append(eps, rpc.Endpoint{Addr: s[0], TLS: tlsCfg})
	}
	return eps, nil
}

func loadTLS(certFile string) (*tls.Config, error) {
	pem, err := os.ReadFile(certFile)
	if err != nil {
		return nil, fmt.Errorf("reading certificate %s: %w", certFile, err)
	}
	return rpc.ClientTLSFromPEM(pem)
}

func dialCoordinator(addr, certFile string) *rpc.Client {
	tlsCfg, err := loadTLS(certFile)
	if err != nil {
		log.Fatal(err)
	}
	c, err := rpc.Dial(addr, tlsCfg)
	if err != nil {
		log.Fatalf("dialing coordinator: %v", err)
	}
	return c
}

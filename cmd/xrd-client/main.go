// Command xrd-client is a demonstration client for a running XRD
// deployment: it creates two local users, connects them to the
// gateway front end over TLS, exchanges a message through the mix
// network and prints the decrypted result.
//
// Against a monolithic deployment (one coordinator serving users
// directly) one address is enough:
//
//	xrd-client -addr 127.0.0.1:7900 -cert xrd-gateway.pem -msg "hello"
//
// Against a sharded front end, -gateways lists every gateway shard as
// "addr=certfile,..." and -addr names the coordinator (which drives
// rounds but no longer hosts users). The client discovers which
// gateway owns each user's mailbox from the gateways' status
// endpoints, and retries the next gateway when one fails at the
// transport level (refused connection, deadline):
//
//	xrd-client -addr 127.0.0.1:7900 -cert xrd-gateway.pem \
//	    -gateways "127.0.0.1:7911=gw1.pem,127.0.0.1:7912=gw2.pem" -msg "hello"
package main

import (
	"crypto/tls"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"
	"time"

	"repro/internal/chainsel"
	"repro/internal/client"
	"repro/internal/onion"
	"repro/internal/rpc"
)

func main() {
	var (
		addr     = flag.String("addr", "127.0.0.1:7900", "coordinator address (drives rounds; serves users when monolithic)")
		cert     = flag.String("cert", "xrd-gateway.pem", "coordinator certificate (from xrd-server -cert-out)")
		gateways = flag.String("gateways", "", `gateway shards as "addr=certfile,..." (empty: users talk to -addr directly)`)
		msg      = flag.String("msg", "hello from xrd-client", "message Alice sends Bob")
		cross    = flag.Bool("cross-shard", false, "place Alice and Bob on different gateway shards (needs >= 2 -gateways)")
		trigger  = flag.Bool("trigger-only", false, "trigger one round without submitting (advances a halted deployment so it can re-form)")
		drill    = flag.String("crash-drill", "", "crash-recovery drill: submit on the first -gateways shard, touch <dir>/submitted, wait for <dir>/restarted, then trigger and assert exactly-once delivery (see scripts/crash_e2e.sh)")
	)
	flag.Parse()

	endpoints, err := parseEndpoints(*addr, *cert, *gateways)
	if err != nil {
		log.Fatal(err)
	}

	if *trigger {
		driver := dialCoordinator(*addr, *cert)
		defer driver.Close()
		rep, err := driver.RunRound()
		if err != nil {
			log.Fatalf("round: %v", err)
		}
		fmt.Printf("round %d executed: %d messages delivered\n", rep.Round, rep.Delivered)
		return
	}

	front, err := rpc.NewMultiClient(endpoints)
	if err != nil {
		log.Fatal(err)
	}
	defer front.Close()
	if err := front.Refresh(); err != nil {
		log.Fatalf("discovering gateways: %v", err)
	}
	driver := dialCoordinator(*addr, *cert)
	defer driver.Close()

	if *drill != "" {
		runCrashDrill(front, driver, *drill, *msg)
		return
	}

	st, err := front.Status()
	if err != nil {
		log.Fatalf("status: %v", err)
	}
	fmt.Printf("deployment: round %d, %d chains of %d, l=%d, %d gateway(s)\n",
		st.Round, st.NumChains, st.ChainLength, st.L, len(endpoints))

	// Chain selection is publicly computable from the chain count.
	plan, err := chainsel.NewPlan(st.NumChains)
	if err != nil {
		log.Fatal(err)
	}
	alice := client.NewUser(nil, plan)
	bob := client.NewUser(nil, plan)
	if *cross {
		// Mailbox placement follows the (random) key, so draw users
		// until the pair provably spans two gateways.
		for tries := 0; front.ClientFor(alice.Mailbox()) == front.ClientFor(bob.Mailbox()); tries++ {
			if tries > 1000 {
				log.Fatal("-cross-shard: could not place users on different gateways (is more than one gateway configured?)")
			}
			bob = client.NewUser(nil, plan)
		}
		fmt.Printf("cross-shard: alice on %s, bob on %s\n",
			front.ClientFor(alice.Mailbox()).Addr(), front.ClientFor(bob.Mailbox()).Addr())
	}
	if err := alice.StartConversation(bob.PublicKey()); err != nil {
		log.Fatal(err)
	}
	if err := bob.StartConversation(alice.PublicKey()); err != nil {
		log.Fatal(err)
	}
	if err := alice.QueueMessage([]byte(*msg)); err != nil {
		log.Fatal(err)
	}

	round := st.Round
	outA, err := alice.BuildRound(round, front)
	if err != nil {
		log.Fatalf("alice build: %v", err)
	}
	outB, err := bob.BuildRound(round, front)
	if err != nil {
		log.Fatalf("bob build: %v", err)
	}
	if err := front.Submit(alice.Mailbox(), outA); err != nil {
		log.Fatalf("alice submit: %v", err)
	}
	if err := front.Submit(bob.Mailbox(), outB); err != nil {
		log.Fatalf("bob submit: %v", err)
	}
	fmt.Printf("submitted %d+%d messages (current + covers) per user; triggering round...\n",
		len(outA.Current), len(outA.Cover))

	rep, err := driver.RunRound()
	if err != nil {
		log.Fatalf("round: %v", err)
	}
	fmt.Printf("round %d executed: %d messages delivered\n", rep.Round, rep.Delivered)

	msgs, err := front.Fetch(rep.Round, bob.Mailbox())
	if err != nil {
		log.Fatalf("fetch: %v", err)
	}
	recv, bad := bob.OpenMailbox(rep.Round, msgs)
	if bad != 0 {
		log.Fatalf("%d undecryptable messages", bad)
	}
	for _, r := range recv {
		if r.FromPartner && r.Kind == onion.KindConversation {
			fmt.Printf("bob reads: %q\n", r.Body)
			return
		}
	}
	log.Fatal("conversation message not delivered")
}

// runCrashDrill is the client half of scripts/crash_e2e.sh. Both
// users are placed on the first -gateways shard (the one the script
// will SIGKILL), the message is submitted and acknowledged, and two
// marker files coordinate with the script: the drill touches
// <dir>/submitted once the durable gateway has acked the round
// outputs, then waits for <dir>/restarted before triggering the
// round. It then asserts the durability contract end to end: the
// message arrives exactly once within two rounds (the restarted shard
// replayed its WAL), the gateway redelivers until acked
// (at-least-once), the MultiClient suppresses the redelivery
// (exactly-once at the application), and an ack prunes it for good.
func runCrashDrill(front *rpc.MultiClient, driver *rpc.Client, dir, msg string) {
	st, err := front.Status()
	if err != nil {
		log.Fatalf("status: %v", err)
	}
	plan, err := chainsel.NewPlan(st.NumChains)
	if err != nil {
		log.Fatal(err)
	}
	// Both mailboxes — submissions and delivery — must live on the
	// gateway the script kills, or the drill proves nothing.
	target := front.Clients()[0].Addr()
	draw := func() *client.User {
		for tries := 0; ; tries++ {
			if tries > 2000 {
				log.Fatalf("crash-drill: could not place a user on %s", target)
			}
			if u := client.NewUser(nil, plan); front.ClientFor(u.Mailbox()).Addr() == target {
				return u
			}
		}
	}
	alice, bob := draw(), draw()
	if err := alice.StartConversation(bob.PublicKey()); err != nil {
		log.Fatal(err)
	}
	if err := bob.StartConversation(alice.PublicKey()); err != nil {
		log.Fatal(err)
	}
	if err := alice.QueueMessage([]byte(msg)); err != nil {
		log.Fatal(err)
	}
	round := st.Round
	outA, err := alice.BuildRound(round, front)
	if err != nil {
		log.Fatalf("alice build: %v", err)
	}
	outB, err := bob.BuildRound(round, front)
	if err != nil {
		log.Fatalf("bob build: %v", err)
	}
	if err := front.Submit(alice.Mailbox(), outA); err != nil {
		log.Fatalf("alice submit: %v", err)
	}
	if err := front.Submit(bob.Mailbox(), outB); err != nil {
		log.Fatalf("bob submit: %v", err)
	}
	fmt.Printf("crash-drill: round %d outputs acknowledged by %s\n", round, target)

	if err := os.WriteFile(filepath.Join(dir, "submitted"), nil, 0o644); err != nil {
		log.Fatal(err)
	}
	restarted := filepath.Join(dir, "restarted")
	for deadline := time.Now().Add(2 * time.Minute); ; {
		if _, err := os.Stat(restarted); err == nil {
			break
		}
		if time.Now().After(deadline) {
			log.Fatalf("crash-drill: timed out waiting for %s", restarted)
		}
		time.Sleep(100 * time.Millisecond)
	}
	// The restarted process needs a beat before its listener answers;
	// Refresh retries until the gateway set is reachable again.
	for deadline := time.Now().Add(time.Minute); ; {
		if err := front.Refresh(); err == nil {
			break
		} else if time.Now().After(deadline) {
			log.Fatalf("crash-drill: gateways unreachable after restart: %v", err)
		}
		time.Sleep(200 * time.Millisecond)
	}

	// Exactly-once within two rounds: the replayed submissions feed
	// the round they were built for.
	copies, delivered := 0, uint64(0)
	for attempt := 1; attempt <= 2 && copies == 0; attempt++ {
		rep, err := driver.RunRound()
		if err != nil {
			log.Fatalf("round (attempt %d): %v", attempt, err)
		}
		fmt.Printf("crash-drill: round %d executed, %d delivered\n", rep.Round, rep.Delivered)
		msgs, err := front.Fetch(rep.Round, bob.Mailbox())
		if err != nil {
			log.Fatalf("fetch: %v", err)
		}
		recv, bad := bob.OpenMailbox(rep.Round, msgs)
		if bad != 0 {
			log.Fatalf("%d undecryptable messages", bad)
		}
		for _, r := range recv {
			if r.FromPartner && r.Kind == onion.KindConversation && string(r.Body) == msg {
				copies++
				delivered = rep.Round
			}
		}
	}
	if copies != 1 {
		log.Fatalf("crash-drill: %d copies delivered across two rounds, want exactly 1", copies)
	}
	fmt.Printf("crash-drill: bob reads %q exactly once after the crash\n", msg)

	// At-least-once underneath: the raw owner still redelivers the
	// unacked round verbatim...
	raw, err := front.ClientFor(bob.Mailbox()).Fetch(delivered, bob.Mailbox())
	if err != nil {
		log.Fatalf("raw refetch: %v", err)
	}
	if len(raw) == 0 {
		log.Fatal("crash-drill: unacked mailbox not redelivered on refetch")
	}
	// ...while the failover client's dedup window absorbs it...
	dup, err := front.Fetch(delivered, bob.Mailbox())
	if err != nil {
		log.Fatalf("refetch: %v", err)
	}
	if len(dup) != 0 {
		log.Fatalf("crash-drill: client dedup let %d duplicates through", len(dup))
	}
	// ...until the ack prunes it server-side.
	pruned, err := front.Ack(delivered, bob.Mailbox())
	if err != nil {
		log.Fatalf("ack: %v", err)
	}
	if pruned == 0 {
		log.Fatal("crash-drill: ack pruned nothing")
	}
	if raw, err = front.ClientFor(bob.Mailbox()).Fetch(delivered, bob.Mailbox()); err != nil || len(raw) != 0 {
		log.Fatalf("crash-drill: acked mailbox still holds %d messages (err %v)", len(raw), err)
	}
	fmt.Println("crash-drill: PASS")
}

// parseEndpoints builds the user-facing gateway set: the -gateways
// list when given, else the coordinator itself (monolith).
func parseEndpoints(coordAddr, coordCert, gateways string) ([]rpc.Endpoint, error) {
	specs := [][2]string{}
	if strings.TrimSpace(gateways) == "" {
		specs = append(specs, [2]string{coordAddr, coordCert})
	} else {
		for _, entry := range strings.Split(gateways, ",") {
			parts := strings.Split(strings.TrimSpace(entry), "=")
			if len(parts) != 2 {
				return nil, fmt.Errorf(`-gateways entry %q: want "addr=certfile"`, entry)
			}
			specs = append(specs, [2]string{parts[0], parts[1]})
		}
	}
	var eps []rpc.Endpoint
	for _, s := range specs {
		tlsCfg, err := loadTLS(s[1])
		if err != nil {
			return nil, err
		}
		eps = append(eps, rpc.Endpoint{Addr: s[0], TLS: tlsCfg})
	}
	return eps, nil
}

func loadTLS(certFile string) (*tls.Config, error) {
	pem, err := os.ReadFile(certFile)
	if err != nil {
		return nil, fmt.Errorf("reading certificate %s: %w", certFile, err)
	}
	return rpc.ClientTLSFromPEM(pem)
}

func dialCoordinator(addr, certFile string) *rpc.Client {
	tlsCfg, err := loadTLS(certFile)
	if err != nil {
		log.Fatal(err)
	}
	c, err := rpc.Dial(addr, tlsCfg)
	if err != nil {
		log.Fatalf("dialing coordinator: %v", err)
	}
	return c
}

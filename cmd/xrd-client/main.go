// Command xrd-client is a demonstration client for a running
// xrd-server: it creates two local users, connects them to the
// gateway over TLS, exchanges a message through the mix network and
// prints the decrypted result.
//
//	xrd-client -addr 127.0.0.1:7900 -cert xrd-gateway.pem -msg "hello"
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"repro/internal/chainsel"
	"repro/internal/client"
	"repro/internal/onion"
	"repro/internal/rpc"
)

func main() {
	var (
		addr    = flag.String("addr", "127.0.0.1:7900", "gateway address")
		cert    = flag.String("cert", "xrd-gateway.pem", "gateway certificate (from xrd-server -cert-out)")
		msg     = flag.String("msg", "hello from xrd-client", "message Alice sends Bob")
		trigger = flag.Bool("trigger-only", false, "trigger one round without submitting (advances a halted deployment so it can re-form)")
	)
	flag.Parse()

	pem, err := os.ReadFile(*cert)
	if err != nil {
		log.Fatalf("reading certificate: %v", err)
	}
	tlsCfg, err := rpc.ClientTLSFromPEM(pem)
	if err != nil {
		log.Fatal(err)
	}
	dial := func() *rpc.Client {
		c, err := rpc.Dial(*addr, tlsCfg)
		if err != nil {
			log.Fatalf("dialing gateway: %v", err)
		}
		return c
	}
	if *trigger {
		driver := dial()
		defer driver.Close()
		rep, err := driver.RunRound()
		if err != nil {
			log.Fatalf("round: %v", err)
		}
		fmt.Printf("round %d executed: %d messages delivered\n", rep.Round, rep.Delivered)
		return
	}

	aliceConn, bobConn, driver := dial(), dial(), dial()
	defer aliceConn.Close()
	defer bobConn.Close()
	defer driver.Close()

	st, err := driver.Status()
	if err != nil {
		log.Fatalf("status: %v", err)
	}
	fmt.Printf("deployment: round %d, %d chains of %d, l=%d\n",
		st.Round, st.NumChains, st.ChainLength, st.L)

	// Chain selection is publicly computable from the chain count.
	plan, err := chainsel.NewPlan(st.NumChains)
	if err != nil {
		log.Fatal(err)
	}
	alice := client.NewUser(nil, plan)
	bob := client.NewUser(nil, plan)
	if err := alice.StartConversation(bob.PublicKey()); err != nil {
		log.Fatal(err)
	}
	if err := bob.StartConversation(alice.PublicKey()); err != nil {
		log.Fatal(err)
	}
	if err := alice.QueueMessage([]byte(*msg)); err != nil {
		log.Fatal(err)
	}

	round := st.Round
	outA, err := alice.BuildRound(round, aliceConn)
	if err != nil {
		log.Fatalf("alice build: %v", err)
	}
	outB, err := bob.BuildRound(round, bobConn)
	if err != nil {
		log.Fatalf("bob build: %v", err)
	}
	if err := aliceConn.Submit(alice.Mailbox(), outA); err != nil {
		log.Fatalf("alice submit: %v", err)
	}
	if err := bobConn.Submit(bob.Mailbox(), outB); err != nil {
		log.Fatalf("bob submit: %v", err)
	}
	fmt.Printf("submitted %d+%d messages (current + covers) per user; triggering round...\n",
		len(outA.Current), len(outA.Cover))

	rep, err := driver.RunRound()
	if err != nil {
		log.Fatalf("round: %v", err)
	}
	fmt.Printf("round %d executed: %d messages delivered\n", rep.Round, rep.Delivered)

	msgs, err := bobConn.Fetch(rep.Round, bob.Mailbox())
	if err != nil {
		log.Fatalf("fetch: %v", err)
	}
	recv, bad := bob.OpenMailbox(rep.Round, msgs)
	if bad != 0 {
		log.Fatalf("%d undecryptable messages", bad)
	}
	for _, r := range recv {
		if r.FromPartner && r.Kind == onion.KindConversation {
			fmt.Printf("bob reads: %q\n", r.Body)
			return
		}
	}
	log.Fatal("conversation message not delivered")
}

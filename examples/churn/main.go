// Churn: what happens when users and servers disappear mid-protocol
// (§5.2.3, §5.3.3).
//
// Alice talks to Bob, then drops offline without warning. The cover
// messages she pre-submitted run in her place for one round, carrying
// the "I'm gone" signal to Bob, who silently reverts to loopback
// traffic — an observer never learns the conversation existed, let
// alone that it ended. Then a mix server crashes, and only the chains
// containing it are affected.
//
// Run with: go run ./examples/churn
package main

import (
	"fmt"
	"io"
	"log"
	"os"

	"repro/internal/core"
	"repro/internal/onion"
)

func main() {
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// run holds the example logic so the smoke test can execute it end to
// end without spawning a process.
func run(w io.Writer) error {
	net, err := core.NewNetwork(core.Config{
		NumServers:          10,
		ChainLengthOverride: 3,
		Seed:                []byte("churn-demo"),
	})
	if err != nil {
		return err
	}
	alice := net.NewUser()
	bob := net.NewUser()
	for i := 0; i < 4; i++ {
		net.NewUser() // bystanders
	}
	if err := alice.StartConversation(bob.PublicKey()); err != nil {
		return err
	}
	if err := bob.StartConversation(alice.PublicKey()); err != nil {
		return err
	}
	if err := alice.QueueMessage([]byte("if I vanish, my covers will tell you")); err != nil {
		return err
	}

	// Round 1: normal conversation; covers for round 2 are banked.
	rep, err := net.RunRound()
	if err != nil {
		return err
	}
	read := false
	recv, _ := bob.OpenMailbox(rep.Round, net.Fetch(bob, rep.Round))
	for _, r := range recv {
		if r.FromPartner {
			fmt.Fprintf(w, "round %d | bob reads: %q\n", rep.Round, r.Body)
			read = true
		}
	}
	if !read {
		return fmt.Errorf("round %d: bob received nothing from alice", rep.Round)
	}

	// Round 2: Alice vanishes. Her banked covers run instead.
	net.SetOnline(alice, false)
	rep, err = net.RunRound()
	if err != nil {
		return err
	}
	if rep.OfflineCovered == 0 {
		return fmt.Errorf("round %d: alice's covers did not run", rep.Round)
	}
	fmt.Fprintf(w, "round %d | users covered by pre-submitted covers: %d\n", rep.Round, rep.OfflineCovered)
	signalled := false
	recv, _ = bob.OpenMailbox(rep.Round, net.Fetch(bob, rep.Round))
	for _, r := range recv {
		if r.FromPartner && r.Kind == onion.KindOffline {
			fmt.Fprintf(w, "round %d | bob receives the offline signal; conversation ends quietly\n", rep.Round)
			signalled = true
		}
	}
	if !signalled {
		return fmt.Errorf("round %d: offline signal never reached bob", rep.Round)
	}
	fmt.Fprintf(w, "round %d | bob still received a full mailbox of %d messages\n",
		rep.Round, len(net.Fetch(bob, rep.Round)))

	// Round 3: Bob is back to loopbacks; traffic pattern unchanged.
	rep, err = net.RunRound()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "round %d | bob's mailbox: %d messages (all loopbacks now)\n\n",
		rep.Round, len(net.Fetch(bob, rep.Round)))

	// Server churn: crash one server; only its chains fail (§5.2.3).
	net.FailServer(3)
	rep, err = net.RunRound()
	if err != nil {
		return err
	}
	if len(rep.FailedChains) == 0 || len(rep.FailedChains) == net.NumChains() {
		return fmt.Errorf("round %d: expected a partial outage, got %d of %d chains failed",
			rep.Round, len(rep.FailedChains), net.NumChains())
	}
	fmt.Fprintf(w, "round %d | server 3 crashed: %d of %d chains failed, %d messages still delivered\n",
		rep.Round, len(rep.FailedChains), net.NumChains(), rep.Delivered)
	net.RestoreServer(3)
	rep, err = net.RunRound()
	if err != nil {
		return err
	}
	if len(rep.FailedChains) != 0 {
		return fmt.Errorf("round %d: chains still failed after restore: %v", rep.Round, rep.FailedChains)
	}
	fmt.Fprintf(w, "round %d | server restored: %d failed chains\n", rep.Round, len(rep.FailedChains))
	return nil
}

package main

import (
	"io"
	"testing"
)

// TestChurnExample executes the example end to end; run() checks its
// own invariants (covers run, offline signal lands, partial outage
// heals) and returns an error on any deviation.
func TestChurnExample(t *testing.T) {
	if err := run(io.Discard); err != nil {
		t.Fatal(err)
	}
}

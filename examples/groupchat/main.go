// Group conversations (§9): three users hold a group chat by running
// pairwise conversations on the distinct chains where each pair
// meets. XRD supports this whenever no two of a user's partners share
// her meeting chain — the library rejects clashes, matching the
// limitation the paper states.
//
// Run with: go run ./examples/groupchat
package main

import (
	"errors"
	"fmt"
	"log"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/onion"
)

func main() {
	// Re-draw user identities until the three pairwise meeting chains
	// are distinct; with n=21 chains most triples qualify (the
	// paper's scenario: "(Alice, Bob), (Alice, Charlie), and
	// (Bob, Charlie) all intersect at different chains").
	net, err := core.NewNetwork(core.Config{
		NumServers:          21,
		ChainLengthOverride: 3,
		Seed:                []byte("groupchat"),
	})
	if err != nil {
		log.Fatal(err)
	}
	var alice, bob, charlie *client.User
	for attempt := 0; ; attempt++ {
		if attempt > 200 {
			log.Fatal("no clash-free triple found; enlarge the network")
		}
		alice, bob, charlie = net.NewUser(), net.NewUser(), net.NewUser()
		plan := net.Plan()
		ab := plan.MeetingChainForUsers(alice.Mailbox(), bob.Mailbox())
		ac := plan.MeetingChainForUsers(alice.Mailbox(), charlie.Mailbox())
		bc := plan.MeetingChainForUsers(bob.Mailbox(), charlie.Mailbox())
		if ab != ac && ab != bc && ac != bc {
			fmt.Printf("pairs meet on distinct chains: ab=%d ac=%d bc=%d\n\n", ab, ac, bc)
			break
		}
	}
	group := []*client.User{alice, bob, charlie}
	names := map[*client.User]string{alice: "alice", bob: "bob", charlie: "charlie"}

	// Every member starts a conversation with every other member; a
	// chain clash would surface as ErrChainClash here.
	for _, u := range group {
		for _, v := range group {
			if u == v {
				continue
			}
			if err := u.StartConversation(v.PublicKey()); err != nil {
				if errors.Is(err, client.ErrChainClash) {
					log.Fatalf("%s-%s clash on a meeting chain; rerun with another seed: %v",
						names[u], names[v], err)
				}
				log.Fatal(err)
			}
		}
	}
	for _, u := range group {
		fmt.Printf("%s converses on chains %v (of her %v)\n",
			names[u], keysOf(u.MeetingChains()), u.Chains())
	}

	// Each member broadcasts one line to the group: one queued body
	// per partner.
	for _, u := range group {
		line := fmt.Sprintf("hi group, from %s", names[u])
		for _, p := range u.Partners() {
			if err := u.QueueMessageFor(p, []byte(line)); err != nil {
				log.Fatal(err)
			}
		}
	}

	rep, err := net.RunRound()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nround %d: %d messages delivered\n\n", rep.Round, rep.Delivered)

	for _, u := range group {
		recv, bad := u.OpenMailbox(rep.Round, net.Fetch(u, rep.Round))
		if bad != 0 {
			log.Fatalf("%s: %d undecryptable", names[u], bad)
		}
		for _, r := range recv {
			if r.FromPartner && r.Kind == onion.KindConversation {
				fmt.Printf("%s reads: %q\n", names[u], r.Body)
			}
		}
	}
	fmt.Println("\neach member still sends exactly l fixed-size messages; the group is invisible")
}

func keysOf[V any](m map[int]V) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

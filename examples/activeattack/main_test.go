package main

import (
	"io"
	"testing"
)

// TestActiveAttackExample executes the example end to end; run()
// checks its own invariants (attacker blamed, honest users spared)
// and returns an error on any deviation.
func TestActiveAttackExample(t *testing.T) {
	if err := run(io.Discard); err != nil {
		t.Fatal(err)
	}
}

// Active attacks against XRD and how aggregate hybrid shuffle (§6)
// answers them:
//
//  1. A malicious server applies the strongest algebraic tamper — a
//     product-preserving key shift that passes the shuffle
//     certificate — and is convicted by the blame protocol; the chain
//     halts with nothing delivered and no privacy lost.
//  2. A malicious user submits a ciphertext that fails deep inside
//     the chain; the blame protocol walks the decryption chain,
//     convicts exactly that user, and the round completes for
//     everyone else.
//
// Run with: go run ./examples/activeattack
package main

import (
	"fmt"
	"log"

	"repro/internal/aead"
	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/mix"
)

func main() {
	net, err := core.NewNetwork(core.Config{
		NumServers:          10,
		ChainLengthOverride: 4,
		Seed:                []byte("active-attack-demo"),
	})
	if err != nil {
		log.Fatal(err)
	}
	users := make([]*client.User, 8)
	for i := range users {
		users[i] = net.NewUser()
	}

	fmt.Println("=== attack 1: tampering mix server ===")
	// The server at position 1 of chain 0 shifts two users' DH keys
	// in opposite directions: the key product — and therefore its
	// shuffle certificate — still verifies, but it cannot forge the
	// downstream AEAD keys, so the next server's decryption fails and
	// the blame protocol runs.
	if err := net.CorruptServer(0, 1, &mix.Corruption{TamperPairs: [][2]int{{0, 1}}}); err != nil {
		log.Fatal(err)
	}
	rep, err := net.RunRound()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("halted chains:  %v (only the attacked chain)\n", rep.HaltedChains)
	fmt.Printf("blamed servers: %v (chain, position)\n", rep.BlamedServers)
	fmt.Printf("blamed users:   %v (honest users are never convicted)\n", rep.BlamedUsers)
	fmt.Printf("messages still delivered on healthy chains: %d\n\n", rep.Delivered)
	if err := net.CorruptServer(0, 1, nil); err != nil {
		log.Fatal(err)
	}

	fmt.Println("=== attack 2: malicious user ===")
	// A user submits an onion whose outer layers authenticate at the
	// first servers but turn to garbage at layer 2.
	params, err := net.ChainParams(3, net.Round())
	if err != nil {
		log.Fatal(err)
	}
	bad, err := mix.MaliciousSubmission(aead.ChaCha20Poly1305(), params, net.Round(), client.LaneCurrent, 2)
	if err != nil {
		log.Fatal(err)
	}
	net.InjectSubmission(3, bad)
	rep, err = net.RunRound()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("blame protocol executions: %d\n", rep.BlameRounds)
	fmt.Printf("blamed users:  %v (removed from the network)\n", rep.BlamedUsers)
	fmt.Printf("halted chains: %v (none — honest traffic unaffected)\n", rep.HaltedChains)
	fmt.Printf("delivered:     %d of %d honest messages\n",
		rep.Delivered, len(users)*net.Plan().L)
}

// Active attacks against XRD and how aggregate hybrid shuffle (§6)
// answers them:
//
//  1. A malicious server applies the strongest algebraic tamper — a
//     product-preserving key shift that passes the shuffle
//     certificate — and is convicted by the blame protocol; the chain
//     halts with nothing delivered and no privacy lost.
//  2. A malicious user submits a ciphertext that fails deep inside
//     the chain; the blame protocol walks the decryption chain,
//     convicts exactly that user, and the round completes for
//     everyone else.
//
// Run with: go run ./examples/activeattack
package main

import (
	"fmt"
	"io"
	"log"
	"os"

	"repro/internal/aead"
	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/mix"
)

func main() {
	if err := run(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

// run holds the example logic so the smoke test can execute it end to
// end without spawning a process.
func run(w io.Writer) error {
	net, err := core.NewNetwork(core.Config{
		NumServers:          10,
		ChainLengthOverride: 4,
		Seed:                []byte("active-attack-demo"),
	})
	if err != nil {
		return err
	}
	users := make([]*client.User, 8)
	for i := range users {
		users[i] = net.NewUser()
	}

	fmt.Fprintln(w, "=== attack 1: tampering mix server ===")
	// Pick a chain carrying at least two messages — the tamper shifts
	// a PAIR of outputs so their key product is preserved.
	counts := make([]int, net.NumChains())
	for _, u := range users {
		for _, c := range u.Chains() {
			counts[c]++
		}
	}
	target := 0
	for c, n := range counts {
		if n >= 2 {
			target = c
			break
		}
	}
	// The server at position 1 of the target chain shifts two users'
	// DH keys in opposite directions: the key product — and therefore
	// its shuffle certificate — still verifies, but it cannot forge
	// the downstream AEAD keys, so the next server's decryption fails
	// and the blame protocol runs.
	if err := net.CorruptServer(target, 1, &mix.Corruption{TamperPairs: [][2]int{{0, 1}}}); err != nil {
		return err
	}
	rep, err := net.RunRound()
	if err != nil {
		return err
	}
	if len(rep.HaltedChains) != 1 || len(rep.BlamedServers) == 0 {
		return fmt.Errorf("tampering server escaped blame: %+v", rep)
	}
	if len(rep.BlamedUsers) != 0 {
		return fmt.Errorf("honest users blamed: %v", rep.BlamedUsers)
	}
	fmt.Fprintf(w, "halted chains:  %v (only the attacked chain)\n", rep.HaltedChains)
	fmt.Fprintf(w, "blamed servers: %v (chain, position)\n", rep.BlamedServers)
	fmt.Fprintf(w, "blamed users:   %v (honest users are never convicted)\n", rep.BlamedUsers)
	fmt.Fprintf(w, "messages still delivered on healthy chains: %d\n\n", rep.Delivered)
	if err := net.CorruptServer(target, 1, nil); err != nil {
		return err
	}

	fmt.Fprintln(w, "=== attack 2: malicious user ===")
	// A user submits an onion whose outer layers authenticate at the
	// first servers but turn to garbage at layer 2.
	params, err := net.ChainParams(3, net.Round())
	if err != nil {
		return err
	}
	bad, err := mix.MaliciousSubmission(aead.ChaCha20Poly1305(), params, net.Round(), client.LaneCurrent, 2)
	if err != nil {
		return err
	}
	net.InjectSubmission(3, bad)
	rep, err = net.RunRound()
	if err != nil {
		return err
	}
	if rep.BlameRounds == 0 || len(rep.BlamedUsers) == 0 {
		return fmt.Errorf("malicious user escaped blame: %+v", rep)
	}
	if len(rep.HaltedChains) != 0 {
		return fmt.Errorf("honest chain halted: %v", rep.HaltedChains)
	}
	fmt.Fprintf(w, "blame protocol executions: %d\n", rep.BlameRounds)
	fmt.Fprintf(w, "blamed users:  %v (removed from the network)\n", rep.BlamedUsers)
	fmt.Fprintf(w, "halted chains: %v (none — honest traffic unaffected)\n", rep.HaltedChains)
	fmt.Fprintf(w, "delivered:     %d of %d honest messages\n",
		rep.Delivered, len(users)*net.Plan().L)
	return nil
}

// Network: the same conversation as quickstart, but with the users on
// the far side of a real TLS connection — the production deployment
// shape. A gateway serves chain parameters, accepts submissions
// (current messages plus next-round covers) and hands out mailboxes;
// users trust it only for availability.
//
// Run with: go run ./examples/network
package main

import (
	"fmt"
	"log"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/onion"
	"repro/internal/rpc"
)

func main() {
	// Server side: assemble the deployment and open the TLS endpoint.
	net, err := core.NewNetwork(core.Config{
		NumServers:          10,
		ChainLengthOverride: 3,
		Seed:                []byte("network-demo"),
	})
	if err != nil {
		log.Fatal(err)
	}
	gateway, err := rpc.NewServer(net, "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer gateway.Close()
	fmt.Printf("gateway listening on %s (TLS 1.3, pinned certificate)\n", gateway.Addr())

	// Client side: each user dials the gateway independently.
	dial := func() *rpc.Client {
		c, err := rpc.Dial(gateway.Addr(), gateway.ClientTLS())
		if err != nil {
			log.Fatal(err)
		}
		return c
	}
	aliceConn, bobConn, driver := dial(), dial(), dial()
	defer aliceConn.Close()
	defer bobConn.Close()
	defer driver.Close()

	alice := client.NewUser(nil, net.Plan())
	bob := client.NewUser(nil, net.Plan())
	if err := alice.StartConversation(bob.PublicKey()); err != nil {
		log.Fatal(err)
	}
	if err := bob.StartConversation(alice.PublicKey()); err != nil {
		log.Fatal(err)
	}
	if err := alice.QueueMessage([]byte("hello over TLS")); err != nil {
		log.Fatal(err)
	}

	st, err := driver.Status()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("deployment: round %d, %d chains of %d, l=%d\n", st.Round, st.NumChains, st.ChainLength, st.L)

	// Build and submit both users' rounds remotely; the rpc.Client is
	// a client.ParamsSource, so the user code is identical to the
	// in-process path.
	for name, pair := range map[string]struct {
		u *client.User
		c *rpc.Client
	}{"alice": {alice, aliceConn}, "bob": {bob, bobConn}} {
		out, err := pair.u.BuildRound(st.Round, pair.c)
		if err != nil {
			log.Fatalf("%s build: %v", name, err)
		}
		if err := pair.c.Submit(pair.u.Mailbox(), out); err != nil {
			log.Fatalf("%s submit: %v", name, err)
		}
	}

	rep, err := driver.RunRound()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("round %d executed: %d messages delivered\n", rep.Round, rep.Delivered)

	msgs, err := bobConn.Fetch(rep.Round, bob.Mailbox())
	if err != nil {
		log.Fatal(err)
	}
	recv, bad := bob.OpenMailbox(rep.Round, msgs)
	if bad != 0 {
		log.Fatalf("%d undecryptable messages", bad)
	}
	for _, r := range recv {
		if r.FromPartner && r.Kind == onion.KindConversation {
			fmt.Printf("bob reads: %q\n", r.Body)
		}
	}
}

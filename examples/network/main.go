// Network: the same conversation as quickstart, but deployed the way
// a production XRD network runs — users on the far side of a real TLS
// connection, and the mix chain itself spanning separate server
// processes. Three hop endpoints stand in for three machines: the
// gateway binds each to one chain position and relays the round's
// onion batches hop to hop over the TLS hop transport (chunked
// streaming, pinned certificates), so every mixing step here crosses
// a real socket. Users trust the gateway only for availability.
//
// Run with: go run ./examples/network
package main

import (
	"fmt"
	"log"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/group"
	"repro/internal/mix"
	"repro/internal/onion"
	"repro/internal/rpc"
)

func main() {
	// "Machines": one hop endpoint per chain position, each with its
	// own pinned certificate. In a real deployment these are
	// `xrd-server -role mix` processes on separate hosts.
	const chainLen = 3
	hopServers := make([]*rpc.HopServer, chainLen)
	for i := range hopServers {
		hs, err := rpc.NewHopServer("127.0.0.1:0", nil)
		if err != nil {
			log.Fatal(err)
		}
		defer hs.Close()
		hopServers[i] = hs
		fmt.Printf("mix position %d listening on %s\n", i, hs.Addr())
	}

	// Gateway side: assemble a single chain whose every position is
	// remote. The provider is called in position order because each
	// position's keys chain off the previous one's blinding key.
	net, err := core.NewNetwork(core.Config{
		NumServers:          chainLen,
		NumChains:           1,
		ChainLengthOverride: chainLen,
		Seed:                []byte("network-demo"),
		RemoteHops: func(chain, pos int, base group.Point) (mix.Hop, error) {
			hc := rpc.DialHop(hopServers[pos].Addr(), hopServers[pos].ClientTLS())
			if _, err := hc.Init(chain, pos, base); err != nil {
				return nil, err
			}
			return hc, nil
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	gateway, err := rpc.NewServer(net, "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer gateway.Close()
	fmt.Printf("gateway listening on %s (TLS 1.3, pinned certificate)\n", gateway.Addr())

	// Client side: each user dials the gateway independently.
	dial := func() *rpc.Client {
		c, err := rpc.Dial(gateway.Addr(), gateway.ClientTLS())
		if err != nil {
			log.Fatal(err)
		}
		return c
	}
	aliceConn, bobConn, driver := dial(), dial(), dial()
	defer aliceConn.Close()
	defer bobConn.Close()
	defer driver.Close()

	alice := client.NewUser(nil, net.Plan())
	bob := client.NewUser(nil, net.Plan())
	if err := alice.StartConversation(bob.PublicKey()); err != nil {
		log.Fatal(err)
	}
	if err := bob.StartConversation(alice.PublicKey()); err != nil {
		log.Fatal(err)
	}
	if err := alice.QueueMessage([]byte("hello across three processes")); err != nil {
		log.Fatal(err)
	}

	st, err := driver.Status()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("deployment: round %d, %d chain(s) of %d, l=%d\n", st.Round, st.NumChains, st.ChainLength, st.L)

	// Build and submit both users' rounds remotely; the rpc.Client is
	// a client.ParamsSource, so the user code is identical to the
	// in-process path.
	for name, pair := range map[string]struct {
		u *client.User
		c *rpc.Client
	}{"alice": {alice, aliceConn}, "bob": {bob, bobConn}} {
		out, err := pair.u.BuildRound(st.Round, pair.c)
		if err != nil {
			log.Fatalf("%s build: %v", name, err)
		}
		if err := pair.c.Submit(pair.u.Mailbox(), out); err != nil {
			log.Fatalf("%s submit: %v", name, err)
		}
	}

	rep, err := driver.RunRound()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("round %d executed over the distributed chain: %d messages delivered\n", rep.Round, rep.Delivered)

	msgs, err := bobConn.Fetch(rep.Round, bob.Mailbox())
	if err != nil {
		log.Fatal(err)
	}
	recv, bad := bob.OpenMailbox(rep.Round, msgs)
	if bad != 0 {
		log.Fatalf("%d undecryptable messages", bad)
	}
	for _, r := range recv {
		if r.FromPartner && r.Kind == onion.KindConversation {
			fmt.Printf("bob reads: %q\n", r.Body)
		}
	}
}

// Quickstart: assemble an in-process XRD network, have Alice and Bob
// hold a metadata-private conversation for three rounds, and show
// that an idle bystander's traffic is indistinguishable in volume.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/onion"
)

func main() {
	// A small deployment: 12 mix servers organised into 12 chains of
	// 4 (production would derive k from the malicious fraction f;
	// see core.Config.F).
	net, err := core.NewNetwork(core.Config{
		NumServers:          12,
		ChainLengthOverride: 4,
		Seed:                []byte("quickstart-public-beacon"),
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("network: %d chains of %d servers, l=%d chains per user\n\n",
		net.NumChains(), net.Topology().ChainLength, net.Plan().L)

	alice := net.NewUser()
	bob := net.NewUser()
	carol := net.NewUser() // idle bystander

	// Conversations start by out-of-band agreement (§3.1): both sides
	// set each other as partner for the same round.
	if err := alice.StartConversation(bob.PublicKey()); err != nil {
		log.Fatal(err)
	}
	if err := bob.StartConversation(alice.PublicKey()); err != nil {
		log.Fatal(err)
	}

	script := []string{
		"hey bob — this channel hides that we're talking at all",
		"every user sends the same l messages either way",
		"see you at the crossroads",
	}
	for round, line := range script {
		if err := alice.QueueMessage([]byte(line)); err != nil {
			log.Fatal(err)
		}
		rep, err := net.RunRound()
		if err != nil {
			log.Fatal(err)
		}

		// Bob downloads his mailbox and decrypts.
		recv, bad := bob.OpenMailbox(rep.Round, net.Fetch(bob, rep.Round))
		if bad != 0 {
			log.Fatalf("round %d: %d undecryptable messages", rep.Round, bad)
		}
		for _, r := range recv {
			if r.FromPartner && r.Kind == onion.KindConversation {
				fmt.Printf("round %d | bob reads: %q\n", rep.Round, r.Body)
			}
		}

		// The observable pattern is identical for everyone.
		fmt.Printf("round %d | mailbox sizes: alice=%d bob=%d carol(idle)=%d\n",
			rep.Round,
			len(net.Fetch(alice, rep.Round)),
			len(net.Fetch(bob, rep.Round)),
			len(net.Fetch(carol, rep.Round)))
		_ = round
	}
	fmt.Println("\nan observer sees every user send and receive exactly l messages per round")
}

#!/usr/bin/env bash
# bench_compare.sh — compare a fresh benchmark run against the repo's
# committed baselines, in two passes of different strictness.
#
#   scripts/bench_compare.sh BENCH_ci.json [BENCH_crypto.json]
#
# The baseline is the set of committed BENCH_*.json archives (the
# files are numbered BENCH_0001, BENCH_0002, ...; per benchmark the
# newest archive carrying it wins, so loadgen archives and
# microbenchmark archives coexist).
#
# Pass 1 (warn-only): every benchmark present on both sides has its
# users/s compared; a drop of more than 20% prints a GitHub Actions
# ::warning:: annotation for a human to read. Shared CI runners are
# too noisy for a hard gate on end-to-end throughput.
#
# Pass 2 (hard gate): the crypto microbenchmarks — ScalarBaseMult,
# MultiScalarMult, SubmissionVerify — have their ns/op compared and
# the script FAILS if any regresses past 25%. These are tight loops
# of pure computation; measured at -benchtime=5x (the second,
# optional argument is a report from such a run; pass 2 falls back to
# the first report without it) they are stable enough that a 25% jump
# means a real change — a lost precomputation path, a batch seam
# silently falling back to serial — not noise. Refresh the committed
# baselines when the runner hardware class changes.
set -euo pipefail

cd "$(dirname "$0")/.."

fresh=${1:?usage: bench_compare.sh FRESH.json [CRYPTO.json]}
crypto=${2:-$fresh}
# The fresh reports may live in the repo root too (CI writes
# BENCH_ci.json there) — never pick one as its own baseline.
baselines=$(ls BENCH_*.json 2>/dev/null | grep -vxF "$(basename "$fresh")" | grep -vxF "$(basename "$crypto")" | sort || true)
if [ -z "$baselines" ]; then
    echo "bench_compare: no committed BENCH_*.json baseline; nothing to compare"
    exit 0
fi
if [ ! -s "$fresh" ]; then
    echo "bench_compare: fresh report $fresh missing or empty" >&2
    exit 1
fi

echo "bench_compare: baselines:" $baselines

echo "bench_compare: pass 1 — throughput (warn-only)"
# shellcheck disable=SC2086 # the baseline list is word-split on purpose
go run ./cmd/benchjson -compare -metric users/s -threshold 0.20 $baselines "$fresh"

echo "bench_compare: pass 2 — crypto ns/op (hard gate, 25%)"
if [ ! -s "$crypto" ]; then
    echo "bench_compare: crypto report $crypto missing or empty" >&2
    exit 1
fi
# shellcheck disable=SC2086
go run ./cmd/benchjson -compare -metric ns/op -lower-better -fail \
    -match '^(ScalarBaseMult|MultiScalarMult|SubmissionVerify)($|[/-])' \
    -threshold 0.25 $baselines "$crypto"

#!/usr/bin/env bash
# bench_compare.sh — warn when a fresh benchmark run regresses against
# the repo's latest committed baseline.
#
#   scripts/bench_compare.sh BENCH_ci.json
#
# The baseline is the set of committed BENCH_*.json archives (the
# files are numbered BENCH_0001, BENCH_0002, ...; per benchmark the
# newest archive carrying it wins, so loadgen archives and
# microbenchmark archives coexist). Every benchmark present in both
# reports has its users/s compared; a drop of more than 20% prints a
# GitHub Actions ::warning:: annotation. Always exits 0: shared CI
# runners are too noisy for a hard gate, the warning is for a human
# to read.
set -euo pipefail

cd "$(dirname "$0")/.."

fresh=${1:?usage: bench_compare.sh FRESH.json}
# The fresh report may live in the repo root too (CI writes
# BENCH_ci.json there) — never pick it as its own baseline.
baselines=$(ls BENCH_*.json 2>/dev/null | grep -vxF "$(basename "$fresh")" | sort || true)
if [ -z "$baselines" ]; then
    echo "bench_compare: no committed BENCH_*.json baseline; nothing to compare"
    exit 0
fi
if [ ! -s "$fresh" ]; then
    echo "bench_compare: fresh report $fresh missing or empty" >&2
    exit 1
fi

echo "bench_compare: baselines:" $baselines
# shellcheck disable=SC2086 # the baseline list is word-split on purpose
go run ./cmd/benchjson -compare -metric users/s -threshold 0.20 $baselines "$fresh"

#!/usr/bin/env bash
# crash_e2e.sh — gateway crash-recovery smoke test.
#
# Builds the binaries and launches a sharded deployment on localhost
# (coordinator, 2 gateway shards, 3 mix processes) with the first
# gateway running durable: -data-dir points it at a WAL+snapshot
# store. The drill then exercises the crash contract with a real
# SIGKILL between a submission's acknowledgement and its round:
#
#   1. xrd-client -crash-drill places both users on gateway 1, submits
#      their round outputs there (fsync'd to the WAL before the ack),
#      and touches $workdir/drill/submitted.
#   2. This script SIGKILLs gateway 1 — no shutdown hook runs — and
#      restarts it over the same -data-dir.
#   3. The client triggers the round and asserts exactly-once
#      delivery within two rounds: the restarted process replayed its
#      WAL, rejoined the coordinator's round protocol, and fed the
#      recovered submissions into their round — once. It then checks
#      redelivery-until-ack and that the ack prunes for good.
#
# Any break in the chain — lost submissions, duplicated delivery, a
# shard that cannot rejoin — fails the client, which fails this script.
set -euo pipefail

cd "$(dirname "$0")/.."

workdir=$(mktemp -d)
pids=()
cleanup() {
    for pid in "${pids[@]:-}"; do
        kill "$pid" 2>/dev/null || true
    done
    wait 2>/dev/null || true
    rm -rf "$workdir"
}
trap cleanup EXIT

echo "== building binaries"
go build -o "$workdir/xrd-server" ./cmd/xrd-server
go build -o "$workdir/xrd-client" ./cmd/xrd-client

cd "$workdir"
mkdir -p drill

wait_for_file() {
    local path=$1 tries=50
    until [ -s "$path" ]; do
        tries=$((tries - 1))
        if [ "$tries" -le 0 ]; then
            echo "timed out waiting for $path" >&2
            exit 1
        fi
        sleep 0.2
    done
}

echo "== launching 3 mix processes"
hops=""
for i in 0 1 2; do
    port=$((7941 + i))
    ./xrd-server -role mix -addr "127.0.0.1:$port" -cert-out "mix$i.pem" >"mix$i.log" 2>&1 &
    pids+=($!)
    hops="${hops:+$hops,}0:$i=127.0.0.1:$port=mix$i.pem"
done
for i in 0 1 2; do
    wait_for_file "mix$i.pem"
done

echo "== launching 2 gateway shards (shard 1 durable in $workdir/gw1-data)"
start_gw1() {
    ./xrd-server -role gateway -addr 127.0.0.1:7951 -shard-range 0:32 \
        -data-dir gw1-data -cert-out gw1.pem >>gw1.log 2>&1 &
    gw1_pid=$!
    pids+=($gw1_pid)
}
start_gw1
./xrd-server -role gateway -addr 127.0.0.1:7952 -shard-range 32:64 -cert-out gw2.pem >gw2.log 2>&1 &
pids+=($!)
wait_for_file gw1.pem
wait_for_file gw2.pem
gateways="127.0.0.1:7951=gw1.pem,127.0.0.1:7952=gw2.pem"

echo "== launching coordinator (1 chain of 3, all positions remote)"
./xrd-server -role coordinator -addr 127.0.0.1:7940 -servers 3 -chains 1 -k 3 \
    -interval 0 -cert-out coord.pem -hops "$hops" \
    -gateways "0:32=127.0.0.1:7951=gw1.pem,32:64=127.0.0.1:7952=gw2.pem" >coord.log 2>&1 &
pids+=($!)
wait_for_file coord.pem

dump_logs() {
    echo "--- coordinator log ---" >&2; cat coord.log >&2
    for f in gw1 gw2 mix0 mix1 mix2; do
        echo "--- $f log ---" >&2; cat "$f.log" >&2
    done
    echo "--- client log ---" >&2; cat client.log >&2
}

echo "== starting crash drill client"
# Retry the initial connection: the coordinator needs a moment after
# writing its certificate before the listener serves.
(
    tries=25
    while true; do
        if ./xrd-client -addr 127.0.0.1:7940 -cert coord.pem \
            -gateways "$gateways" -crash-drill drill \
            -msg "survives the kill" >client.log 2>&1; then
            exit 0
        fi
        # Only pre-submission failures are retriable; once the marker
        # exists the drill ran and its verdict stands.
        if [ -f drill/submitted ]; then
            exit 1
        fi
        tries=$((tries - 1))
        if [ "$tries" -le 0 ]; then
            exit 1
        fi
        sleep 0.2
    done
) &
client_pid=$!
pids+=($client_pid)

wait_for_marker() {
    local path=$1 tries=150
    until [ -e "$path" ]; do
        tries=$((tries - 1))
        if [ "$tries" -le 0 ]; then
            echo "timed out waiting for $path" >&2
            dump_logs
            exit 1
        fi
        sleep 0.2
    done
}
wait_for_marker drill/submitted

echo "== SIGKILL gateway 1 (pid $gw1_pid) with acked submissions on disk"
kill -9 "$gw1_pid"
wait "$gw1_pid" 2>/dev/null || true

echo "== restarting gateway 1 over the same -data-dir"
rm -f gw1.pem
start_gw1
wait_for_file gw1.pem
touch drill/restarted

if ! wait "$client_pid"; then
    echo "crash drill failed" >&2
    dump_logs
    exit 1
fi
cat client.log
if ! grep -q "^crash-drill: PASS$" client.log; then
    echo "crash drill did not reach its verdict" >&2
    dump_logs
    exit 1
fi
if ! grep -q "recovered .* records" gw1.log; then
    echo "restarted gateway did not report WAL recovery" >&2
    dump_logs
    exit 1
fi

echo "PASS: gateway SIGKILLed after ack, restarted from its data dir, delivered exactly once"

#!/usr/bin/env bash
# deploy_e2e.sh — multi-process deployment smoke test.
#
# Builds xrd-server and xrd-client, launches a gateway plus three
# `-role mix` processes on localhost (one chain, every position a
# separate OS process reached over the TLS hop transport), runs two
# full rounds through xrd-client, and asserts end-to-end message
# delivery each round. This is the honesty check for the distributed
# chain path: if the hop transport regresses, the conversation dies
# and this script exits non-zero.
set -euo pipefail

cd "$(dirname "$0")/.."

workdir=$(mktemp -d)
pids=()
cleanup() {
    for pid in "${pids[@]:-}"; do
        kill "$pid" 2>/dev/null || true
    done
    wait 2>/dev/null || true
    rm -rf "$workdir"
}
trap cleanup EXIT

echo "== building binaries"
go build -o "$workdir/xrd-server" ./cmd/xrd-server
go build -o "$workdir/xrd-client" ./cmd/xrd-client

cd "$workdir"

wait_for_file() {
    local path=$1 tries=50
    until [ -s "$path" ]; do
        tries=$((tries - 1))
        if [ "$tries" -le 0 ]; then
            echo "timed out waiting for $path" >&2
            exit 1
        fi
        sleep 0.2
    done
}

echo "== launching 3 mix processes"
hops=""
for i in 0 1 2; do
    port=$((7911 + i))
    ./xrd-server -role mix -addr "127.0.0.1:$port" -cert-out "mix$i.pem" >"mix$i.log" 2>&1 &
    pids+=($!)
    hops="${hops:+$hops,}0:$i=127.0.0.1:$port=mix$i.pem"
done
for i in 0 1 2; do
    wait_for_file "mix$i.pem"
done

echo "== launching gateway (1 chain of 3, all positions remote)"
./xrd-server -role gateway -addr 127.0.0.1:7910 -servers 3 -chains 1 -k 3 \
    -interval 0 -cert-out gw.pem -hops "$hops" >gw.log 2>&1 &
pids+=($!)
wait_for_file gw.pem

run_round() {
    local n=$1 msg="hello from round $1" out tries=25
    # The gateway needs a moment after writing its certificate before
    # the listener serves; retry the first connection.
    while true; do
        if out=$(./xrd-client -addr 127.0.0.1:7910 -cert gw.pem -msg "$msg" 2>&1); then
            break
        fi
        tries=$((tries - 1))
        if [ "$tries" -le 0 ]; then
            echo "round $n client failed:" >&2
            echo "$out" >&2
            echo "--- gateway log ---" >&2; cat gw.log >&2
            exit 1
        fi
        sleep 0.2
    done
    echo "$out"
    if ! grep -qF "bob reads: \"$msg\"" <<<"$out"; then
        echo "round $n: message not delivered" >&2
        echo "--- gateway log ---" >&2; cat gw.log >&2
        for i in 0 1 2; do echo "--- mix$i log ---" >&2; cat "mix$i.log" >&2; done
        exit 1
    fi
}

echo "== round 1"
run_round 1
echo "== round 2"
run_round 2

echo "PASS: two rounds delivered end to end across 4 processes"

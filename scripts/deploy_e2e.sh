#!/usr/bin/env bash
# deploy_e2e.sh — multi-process deployment smoke test.
#
# Builds the binaries and launches a full sharded deployment on
# localhost, every role a separate OS process:
#
#   coordinator (round driver, 1 chain of 3, all positions remote)
#   2 gateway shards owning registry shards [0:32) and [32:64)
#   3 `-role mix` processes reached over the TLS hop transport
#
# then runs two full rounds through xrd-client with -cross-shard, so
# each round proves a message submitted on one gateway shard comes out
# of a mailbox owned by the other — end-to-end coverage of the
# coordinator round protocol (begin/batch/deliver/finish), the hop
# transport, and cross-shard delivery routing. If any of those
# regress, the conversation dies and this script exits non-zero.
set -euo pipefail

cd "$(dirname "$0")/.."

workdir=$(mktemp -d)
pids=()
cleanup() {
    for pid in "${pids[@]:-}"; do
        kill "$pid" 2>/dev/null || true
    done
    wait 2>/dev/null || true
    rm -rf "$workdir"
}
trap cleanup EXIT

echo "== building binaries"
go build -o "$workdir/xrd-server" ./cmd/xrd-server
go build -o "$workdir/xrd-client" ./cmd/xrd-client

cd "$workdir"

wait_for_file() {
    local path=$1 tries=50
    until [ -s "$path" ]; do
        tries=$((tries - 1))
        if [ "$tries" -le 0 ]; then
            echo "timed out waiting for $path" >&2
            exit 1
        fi
        sleep 0.2
    done
}

echo "== launching 3 mix processes"
hops=""
for i in 0 1 2; do
    port=$((7911 + i))
    ./xrd-server -role mix -addr "127.0.0.1:$port" -cert-out "mix$i.pem" >"mix$i.log" 2>&1 &
    pids+=($!)
    hops="${hops:+$hops,}0:$i=127.0.0.1:$port=mix$i.pem"
done
for i in 0 1 2; do
    wait_for_file "mix$i.pem"
done

echo "== launching 2 gateway shards"
./xrd-server -role gateway -addr 127.0.0.1:7921 -shard-range 0:32 -cert-out gw1.pem >gw1.log 2>&1 &
pids+=($!)
./xrd-server -role gateway -addr 127.0.0.1:7922 -shard-range 32:64 -cert-out gw2.pem >gw2.log 2>&1 &
pids+=($!)
wait_for_file gw1.pem
wait_for_file gw2.pem
gateways="127.0.0.1:7921=gw1.pem,127.0.0.1:7922=gw2.pem"

echo "== launching coordinator (1 chain of 3, all positions remote, 2 gateway shards)"
./xrd-server -role coordinator -addr 127.0.0.1:7910 -servers 3 -chains 1 -k 3 \
    -interval 0 -cert-out coord.pem -hops "$hops" \
    -gateways "0:32=127.0.0.1:7921=gw1.pem,32:64=127.0.0.1:7922=gw2.pem" >coord.log 2>&1 &
pids+=($!)
wait_for_file coord.pem

dump_logs() {
    echo "--- coordinator log ---" >&2; cat coord.log >&2
    for f in gw1 gw2 mix0 mix1 mix2; do
        echo "--- $f log ---" >&2; cat "$f.log" >&2
    done
}

run_round() {
    local n=$1 msg="hello from round $1" out tries=25
    # The coordinator needs a moment after writing its certificate
    # before the listener serves; retry the first connection.
    while true; do
        if out=$(./xrd-client -addr 127.0.0.1:7910 -cert coord.pem \
                -gateways "$gateways" -cross-shard -msg "$msg" 2>&1); then
            break
        fi
        tries=$((tries - 1))
        if [ "$tries" -le 0 ]; then
            echo "round $n client failed:" >&2
            echo "$out" >&2
            dump_logs
            exit 1
        fi
        sleep 0.2
    done
    echo "$out"
    if ! grep -q "^cross-shard: " <<<"$out"; then
        echo "round $n: users were not placed on different shards" >&2
        exit 1
    fi
    if ! grep -qF "bob reads: \"$msg\"" <<<"$out"; then
        echo "round $n: message not delivered" >&2
        dump_logs
        exit 1
    fi
}

echo "== round 1"
run_round 1
echo "== round 2"
run_round 2

echo "PASS: two cross-shard rounds delivered end to end across 6 processes"

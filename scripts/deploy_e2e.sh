#!/usr/bin/env bash
# deploy_e2e.sh — multi-process deployment smoke test.
#
# Builds the binaries and launches a full sharded deployment on
# localhost, every role a separate OS process:
#
#   coordinator (round driver, 1 chain of 3, all positions remote)
#   2 gateway shards owning registry shards [0:32) and [32:64)
#   3 `-role mix` processes reached over the TLS hop transport
#
# then runs two full rounds through xrd-client with -cross-shard, so
# each round proves a message submitted on one gateway shard comes out
# of a mailbox owned by the other — end-to-end coverage of the
# coordinator round protocol (begin/batch/deliver/finish), the hop
# transport, and cross-shard delivery routing. If any of those
# regress, the conversation dies and this script exits non-zero.
#
# Every process also gets an -admin-addr; the script asserts /healthz
# answers on all six and, after the rounds, that the coordinator's
# /metrics carries the round-phase histograms. Set METRICS_OUT to a
# directory to keep the post-round /metrics dumps (CI archives them
# as a workflow artifact).
set -euo pipefail

cd "$(dirname "$0")/.."

workdir=$(mktemp -d)
pids=()
cleanup() {
    for pid in "${pids[@]:-}"; do
        kill "$pid" 2>/dev/null || true
    done
    wait 2>/dev/null || true
    rm -rf "$workdir"
}
trap cleanup EXIT

echo "== building binaries"
go build -o "$workdir/xrd-server" ./cmd/xrd-server
go build -o "$workdir/xrd-client" ./cmd/xrd-client

cd "$workdir"

wait_for_file() {
    local path=$1 tries=50
    until [ -s "$path" ]; do
        tries=$((tries - 1))
        if [ "$tries" -le 0 ]; then
            echo "timed out waiting for $path" >&2
            exit 1
        fi
        sleep 0.2
    done
}

echo "== launching 3 mix processes"
hops=""
for i in 0 1 2; do
    port=$((7911 + i))
    ./xrd-server -role mix -addr "127.0.0.1:$port" -cert-out "mix$i.pem" \
        -admin-addr "127.0.0.1:$((7933 + i))" >"mix$i.log" 2>&1 &
    pids+=($!)
    hops="${hops:+$hops,}0:$i=127.0.0.1:$port=mix$i.pem"
done
for i in 0 1 2; do
    wait_for_file "mix$i.pem"
done

echo "== launching 2 gateway shards"
./xrd-server -role gateway -addr 127.0.0.1:7921 -shard-range 0:32 -cert-out gw1.pem \
    -admin-addr 127.0.0.1:7931 >gw1.log 2>&1 &
pids+=($!)
./xrd-server -role gateway -addr 127.0.0.1:7922 -shard-range 32:64 -cert-out gw2.pem \
    -admin-addr 127.0.0.1:7932 >gw2.log 2>&1 &
pids+=($!)
wait_for_file gw1.pem
wait_for_file gw2.pem
gateways="127.0.0.1:7921=gw1.pem,127.0.0.1:7922=gw2.pem"

echo "== launching coordinator (1 chain of 3, all positions remote, 2 gateway shards)"
./xrd-server -role coordinator -addr 127.0.0.1:7910 -servers 3 -chains 1 -k 3 \
    -interval 0 -cert-out coord.pem -hops "$hops" \
    -admin-addr 127.0.0.1:7930 \
    -gateways "0:32=127.0.0.1:7921=gw1.pem,32:64=127.0.0.1:7922=gw2.pem" >coord.log 2>&1 &
pids+=($!)
wait_for_file coord.pem

dump_logs() {
    echo "--- coordinator log ---" >&2; cat coord.log >&2
    for f in gw1 gw2 mix0 mix1 mix2; do
        echo "--- $f log ---" >&2; cat "$f.log" >&2
    done
}

# name=admin-port pairs for every process's observability endpoint.
admin_endpoints="coord=7930 gw1=7931 gw2=7932 mix0=7933 mix1=7934 mix2=7935"

fetch() {
    local url=$1 tries=25 out
    while true; do
        if out=$(curl -fsS --max-time 5 "$url" 2>/dev/null); then
            printf '%s' "$out"
            return 0
        fi
        tries=$((tries - 1))
        if [ "$tries" -le 0 ]; then
            return 1
        fi
        sleep 0.2
    done
}

echo "== asserting /healthz on all 6 admin endpoints"
for ep in $admin_endpoints; do
    name=${ep%=*} port=${ep#*=}
    if ! health=$(fetch "http://127.0.0.1:$port/healthz"); then
        echo "$name: /healthz on port $port did not answer" >&2
        dump_logs
        exit 1
    fi
    if ! grep -q '"role"' <<<"$health"; then
        echo "$name: /healthz returned no role: $health" >&2
        exit 1
    fi
    echo "$name: $(tr -d ' \n' <<<"$health")"
done

run_round() {
    local n=$1 msg="hello from round $1" out tries=25
    # The coordinator needs a moment after writing its certificate
    # before the listener serves; retry the first connection.
    while true; do
        if out=$(./xrd-client -addr 127.0.0.1:7910 -cert coord.pem \
                -gateways "$gateways" -cross-shard -msg "$msg" 2>&1); then
            break
        fi
        tries=$((tries - 1))
        if [ "$tries" -le 0 ]; then
            echo "round $n client failed:" >&2
            echo "$out" >&2
            dump_logs
            exit 1
        fi
        sleep 0.2
    done
    echo "$out"
    if ! grep -q "^cross-shard: " <<<"$out"; then
        echo "round $n: users were not placed on different shards" >&2
        exit 1
    fi
    if ! grep -qF "bob reads: \"$msg\"" <<<"$out"; then
        echo "round $n: message not delivered" >&2
        dump_logs
        exit 1
    fi
}

echo "== round 1"
run_round 1
echo "== round 2"
run_round 2

echo "== dumping post-round /metrics from all 6 processes"
metrics_dir=${METRICS_OUT:-$workdir/metrics}
mkdir -p "$metrics_dir"
for ep in $admin_endpoints; do
    name=${ep%=*} port=${ep#*=}
    if ! fetch "http://127.0.0.1:$port/metrics" >"$metrics_dir/$name.metrics.txt"; then
        echo "$name: /metrics on port $port did not answer" >&2
        dump_logs
        exit 1
    fi
    if ! [ -s "$metrics_dir/$name.metrics.txt" ]; then
        echo "$name: /metrics dump is empty" >&2
        exit 1
    fi
done
if ! grep -q '^xrd_round_phase_seconds_bucket{' "$metrics_dir/coord.metrics.txt"; then
    echo "coordinator /metrics has no round-phase histograms after two rounds" >&2
    head -50 "$metrics_dir/coord.metrics.txt" >&2
    exit 1
fi
rounds=$(grep '^xrd_rounds_total' "$metrics_dir/coord.metrics.txt" | awk '{print $2}')
if [ "${rounds:-0}" -lt 2 ]; then
    echo "coordinator xrd_rounds_total=$rounds after two rounds" >&2
    exit 1
fi
echo "coordinator metrics: xrd_rounds_total=$rounds, round-phase histograms present"

echo "PASS: two cross-shard rounds delivered end to end across 6 processes, /healthz and /metrics live on all"

#!/usr/bin/env bash
# chaos_e2e.sh — fault-injection deployment test: epoch recovery after
# a mix process dies.
#
# Builds xrd-server and xrd-client, launches a monolithic coordinator
# plus three `-role mix` processes (one chain of 3, every position its
# own OS process, identity-keyed via -mix-servers so epoch recovery is
# on), delivers a round end to end, then SIGKILLs one mix process and
# keeps driving rounds. The dead hop halts its chain (the round
# reports an error and delivers nothing); the coordinator must evict
# the dead server, re-form the chain from the two survivors and resume
# delivery within a bounded number of rounds — otherwise this script
# exits non-zero.
set -euo pipefail

cd "$(dirname "$0")/.."

workdir=$(mktemp -d)
pids=()
cleanup() {
    for pid in "${pids[@]:-}"; do
        kill "$pid" 2>/dev/null || true
    done
    wait 2>/dev/null || true
    rm -rf "$workdir"
}
trap cleanup EXIT

echo "== building binaries"
go build -o "$workdir/xrd-server" ./cmd/xrd-server
go build -o "$workdir/xrd-client" ./cmd/xrd-client

cd "$workdir"

wait_for_file() {
    local path=$1 tries=50
    until [ -s "$path" ]; do
        tries=$((tries - 1))
        if [ "$tries" -le 0 ]; then
            echo "timed out waiting for $path" >&2
            exit 1
        fi
        sleep 0.2
    done
}

dump_logs() {
    echo "--- coordinator log ---" >&2; cat gw.log >&2
    for i in 0 1 2; do echo "--- mix$i log ---" >&2; cat "mix$i.log" >&2; done
}

echo "== launching 3 mix processes"
specs=""
mix_pids=()
for i in 0 1 2; do
    port=$((7921 + i))
    ./xrd-server -role mix -addr "127.0.0.1:$port" -cert-out "mix$i.pem" >"mix$i.log" 2>&1 &
    mix_pids+=($!)
    pids+=($!)
    specs="${specs:+$specs,}$i=127.0.0.1:$port=mix$i.pem"
done
for i in 0 1 2; do
    wait_for_file "mix$i.pem"
done

echo "== launching coordinator (1 chain of 3, identity-keyed remotes, recovery on)"
./xrd-server -role coordinator -addr 127.0.0.1:7920 -servers 3 -chains 1 -k 3 \
    -interval 0 -cert-out gw.pem -mix-servers "$specs" >gw.log 2>&1 &
pids+=($!)
wait_for_file gw.pem

# try_round runs one client round and reports via exit status whether
# the conversation message was delivered. Client output lands in
# round.out either way.
try_round() {
    local msg=$1
    if ! ./xrd-client -addr 127.0.0.1:7920 -cert gw.pem -msg "$msg" >round.out 2>&1; then
        return 1
    fi
    grep -qF "bob reads: \"$msg\"" round.out
}

echo "== round 1: healthy delivery"
tries=25
until try_round "hello before the crash"; do
    # The coordinator needs a moment after writing its certificate before
    # the listener serves; retry the first connection.
    tries=$((tries - 1))
    if [ "$tries" -le 0 ]; then
        echo "healthy round never delivered:" >&2
        cat round.out >&2
        dump_logs
        exit 1
    fi
    sleep 0.2
done
cat round.out

echo "== killing mix1 (position 1 of the only chain)"
kill -9 "${mix_pids[1]}"
wait "${mix_pids[1]}" 2>/dev/null || true

echo "== dirty round: the chain must halt, not deliver"
if try_round "message into the void"; then
    echo "round delivered through a dead hop" >&2
    dump_logs
    exit 1
fi
cat round.out || true

echo "== recovery: delivery must resume within 6 rounds"
recovered=""
for attempt in 1 2 3 4 5 6; do
    # A bare trigger advances the deployment: the coordinator evicts the
    # dead server and re-forms the chain at the top of the next round.
    # Clients cannot submit into a halted epoch (cover building needs
    # the next round's announced keys), so the trigger has no users.
    ./xrd-client -addr 127.0.0.1:7920 -cert gw.pem -trigger-only >trigger.out 2>&1 || true
    if try_round "hello after recovery $attempt"; then
        recovered=$attempt
        break
    fi
    echo "  round $attempt: not yet delivered (recovery in progress)"
    sleep 0.2
done
if [ -z "$recovered" ]; then
    echo "delivery never resumed after the crash" >&2
    cat round.out >&2
    dump_logs
    exit 1
fi
cat round.out

echo "== stability: one more round on the re-formed chain"
if ! try_round "steady state"; then
    echo "re-formed chain failed a follow-up round" >&2
    cat round.out >&2
    dump_logs
    exit 1
fi
cat round.out

echo "PASS: chain halted on hop death, re-formed from survivors, delivery resumed (round $recovered)"

// Package repro is a from-scratch Go reproduction of "XRD: Scalable
// Messaging System with Cryptographic Privacy" (Kwon, Lu, Devadas;
// NSDI 2020).
//
// The library lives under internal/: internal/core is the public API
// of the system (network assembly and round execution), built on the
// substrates internal/{group,kdf,chacha20,poly1305,aead,nizk} for
// cryptography, internal/{chainsel,topology} for chain formation and
// selection, internal/{onion,mix,mailbox,client} for the protocol,
// internal/rpc for the TLS transport, and internal/{model,churn,
// trace} for the evaluation. See README.md for a tour, DESIGN.md for
// the system inventory, and EXPERIMENTS.md for paper-versus-measured
// results. The benchmarks in bench_test.go regenerate every figure of
// the paper's evaluation section; runnable examples live under
// examples/ and command-line tools under cmd/.
package repro
